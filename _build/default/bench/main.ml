(* Benchmark entry point.

   Default mode regenerates every table and figure of the paper's
   evaluation (see lib/harness/experiments.ml); [--bechamel] runs a
   Bechamel micro-benchmark suite with one Test.make group per table on
   small representative workloads; [--quick] shrinks budgets for smoke
   runs. *)

open Berkmin_gen
module Config = Berkmin.Config
module Experiments = Berkmin_harness.Experiments

(* ------------------------------------------------------------------ *)
(* Bechamel micro-suite.                                               *)

let solve_fn config instance =
  let cnf = instance.Instance.cnf in
  fun () ->
    match
      Berkmin.Solver.solve_cnf ~config
        ~budget:(Berkmin.Solver.budget_conflicts 20_000)
        cnf
    with
    | Berkmin.Solver.Sat _ | Berkmin.Solver.Unsat | Berkmin.Solver.Unknown -> ()

let test_of ~name config instance =
  Bechamel.Test.make ~name (Bechamel.Staged.stage (solve_fn config instance))

let bechamel_tests () =
  let hole = Pigeonhole.instance 7 6 in
  let adder = Circuit_bench.adder_miter ~width:8 in
  let mul = Circuit_bench.mul_miter ~width:3 in
  let tiny_hole = Pigeonhole.instance 6 5 in
  let group name members = Bechamel.Test.make_grouped ~name members in
  [
    group "table1-sensitivity"
      [
        test_of ~name:"berkmin" Config.berkmin hole;
        test_of ~name:"less_sensitivity" Config.less_sensitivity hole;
      ];
    group "table2-mobility"
      [
        test_of ~name:"berkmin" Config.berkmin hole;
        test_of ~name:"less_mobility" Config.less_mobility hole;
      ];
    group "table3-skin" [ test_of ~name:"berkmin" Config.berkmin adder ];
    group "table4-branch"
      [
        test_of ~name:"berkmin" Config.berkmin adder;
        test_of ~name:"sat_top" Config.sat_top adder;
        test_of ~name:"unsat_top" Config.unsat_top adder;
        test_of ~name:"take_0" Config.take_zero adder;
        test_of ~name:"take_1" Config.take_one adder;
        test_of ~name:"take_rand" Config.take_random adder;
      ];
    group "table5-db"
      [
        test_of ~name:"berkmin" Config.berkmin mul;
        test_of ~name:"limited_keeping" Config.limited_keeping mul;
      ];
    group "table6-comparable"
      [
        test_of ~name:"berkmin" Config.berkmin adder;
        test_of ~name:"chaff" Config.chaff adder;
      ];
    group "table7-dominated"
      [
        test_of ~name:"berkmin" Config.berkmin mul;
        test_of ~name:"chaff" Config.chaff mul;
      ];
    group "table8-decisions"
      [
        test_of ~name:"berkmin" Config.berkmin hole;
        test_of ~name:"chaff" Config.chaff hole;
      ];
    group "table9-dbsize"
      [
        test_of ~name:"berkmin" Config.berkmin mul;
        test_of ~name:"chaff" Config.chaff mul;
      ];
    group "table10-robustness"
      [
        test_of ~name:"berkmin" Config.berkmin tiny_hole;
        test_of ~name:"chaff" Config.chaff tiny_hole;
        test_of ~name:"limmat" Config.limmat_like tiny_hole;
      ];
  ]

let run_bechamel () =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None
      ~stabilize:true ()
  in
  print_endline "Bechamel micro-suite (ns per solve, OLS on monotonic clock):";
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
      let names =
        List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) results [])
      in
      List.iter
        (fun name ->
          let o = Hashtbl.find results name in
          match Analyze.OLS.estimates o with
          | Some (est :: _) -> Printf.printf "  %-42s %12.0f ns/run\n%!" name est
          | Some [] | None -> Printf.printf "  %-42s (no estimate)\n%!" name)
        names)
    (bechamel_tests ())

(* ------------------------------------------------------------------ *)
(* Command line.                                                       *)

let run quick bechamel extensions only list_names =
  if list_names then begin
    List.iter print_endline Experiments.names;
    0
  end
  else if bechamel then begin
    run_bechamel ();
    0
  end
  else begin
    let opts =
      if quick then Experiments.quick_opts else Experiments.default_opts
    in
    match only with
    | [] ->
      Experiments.run_all opts;
      if extensions then Experiments.run_extensions opts;
      0
    | names ->
      let bad = List.filter (fun n -> not (Experiments.run_one opts n)) names in
      if bad = [] then 0
      else begin
        Printf.eprintf "unknown experiment(s): %s (try --list)\n"
          (String.concat ", " bad);
        1
      end
  end

open Cmdliner

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"Small budgets for a smoke run.")

let bechamel =
  Arg.(
    value & flag
    & info [ "bechamel" ]
        ~doc:"Run the Bechamel micro-benchmark suite instead of the tables.")

let only =
  Arg.(
    value
    & opt_all string []
    & info [ "only"; "table" ] ~docv:"NAME"
        ~doc:"Run only the named experiment (repeatable), e.g. table7.")

let list_names =
  Arg.(value & flag & info [ "list" ] ~doc:"List experiment names and exit.")

let extensions =
  Arg.(
    value & flag
    & info [ "extensions" ]
        ~doc:
          "Also run the beyond-the-paper ablation sweeps (restart \
           strategies, decision window, minimization, variable-order \
           heap, DB constants, activity aging).")

let cmd =
  let doc = "Regenerate the BerkMin paper's tables and figures" in
  Cmd.v
    (Cmd.info "berkmin-bench" ~doc)
    Term.(const run $ quick $ bechamel $ extensions $ only $ list_names)

let () = exit (Cmd.eval' cmd)
