(* Bounded model checking — the paper's §1 cites SAT-based model
   checking as a driving application.  We build a sequential "digital
   lock" that opens only after the 4-step input combination 6,1,7,2 and
   let the solver crack it: BMC asks "is the OPEN state reachable in k
   steps?", and the counterexample trace IS the combination.

   Run with: dune exec examples/bmc_lock.exe *)

module C = Berkmin_circuit.Circuit
module B = Berkmin_circuit.Bitvec
module Seq = Berkmin_circuit.Seq
module Bmc = Berkmin_circuit.Bmc

let combination = [ 6; 1; 7; 2 ]

(* A 3-bit state register counts how many correct digits have been
   entered in a row; a wrong digit resets it.  State 4 = open. *)
let lock () =
  let c = C.create () in
  let s = Seq.create c in
  let digit = B.inputs c "digit" 3 in
  let state_regs =
    List.init 3 (fun i ->
        Seq.add_register s ~name:(Printf.sprintf "st%d" i) ~init:false)
  in
  let state = Array.of_list (List.map (fun r -> r.Seq.state_input) state_regs) in
  let state_is k = B.equal_bv c state (B.const_int c ~width:3 k) in
  let digit_is k = B.equal_bv c digit (B.const_int c ~width:3 k) in
  (* next = state+1 on the expected digit for that state, else 0;
     the open state absorbs. *)
  let next_val =
    let zero = B.const_int c ~width:3 0 in
    let step acc (idx, expected) =
      let advance =
        C.and_ c (state_is idx) (digit_is expected)
      in
      B.mux_bv c ~sel:advance ~if_true:(B.const_int c ~width:3 (idx + 1))
        ~if_false:acc
    in
    let base =
      B.mux_bv c ~sel:(state_is 4) ~if_true:(B.const_int c ~width:3 4)
        ~if_false:zero
    in
    List.fold_left step base (List.mapi (fun i d -> (i, d)) combination)
  in
  List.iteri (fun i r -> Seq.connect s r ~next:next_val.(i)) state_regs;
  C.set_output c "open" (state_is 4);
  s

let () =
  let s = lock () in
  Format.printf "lock circuit: %a@." C.pp_stats (Seq.circuit s);
  print_endline "asking BMC: can the lock open within 6 steps?";
  (match Bmc.check_incremental s ~bad:"open" ~max_bound:7 with
  | Bmc.Counterexample { depth; frames } ->
    Printf.printf "lock OPENS at step %d; recovered combination:\n" depth;
    List.iteri
      (fun t frame ->
        let digit =
          (if frame.(0) then 1 else 0)
          lor (if frame.(1) then 2 else 0)
          lor if frame.(2) then 4 else 0
        in
        if t < depth then Printf.printf "  step %d: enter %d\n" t digit)
      frames;
    (* Replay to prove it. *)
    let outs = Seq.simulate s frames in
    Printf.printf "replay: open=%b at step %d\n"
      (List.assoc "open" (List.nth outs depth))
      depth
  | Bmc.Safe n -> Printf.printf "safe up to %d steps?! (bug)\n" n
  | Bmc.Inconclusive -> print_endline "budget exhausted");
  (* Sanity: the lock cannot open in fewer steps than the combination
     length. *)
  match Bmc.check s ~bad:"open" ~bound:(List.length combination) with
  | Bmc.Safe n ->
    Printf.printf "and no combination shorter than %d opens it (proved)\n" n
  | Bmc.Counterexample _ -> print_endline "short-cut found?! (bug)"
  | Bmc.Inconclusive -> print_endline "budget exhausted"
