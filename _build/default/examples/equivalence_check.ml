(* Combinational equivalence checking — the workload the paper's
   Miters class and the original BerkMin's industrial deployment came
   from.  We build two 8-bit adders with different microarchitectures,
   prove them equivalent (UNSAT miter), then inject a design error and
   extract a differentiating input vector from the SAT model.

   Run with: dune exec examples/equivalence_check.exe *)

module C = Berkmin_circuit.Circuit
module B = Berkmin_circuit.Bitvec
module M = Berkmin_circuit.Miter
module T = Berkmin_circuit.Tseitin
module R = Berkmin_circuit.Random_circuit

let width = 8

let make_adder kind =
  let c = C.create () in
  let a = B.inputs c "a" width and b = B.inputs c "b" width in
  let sum, carry =
    match kind with
    | `Ripple -> B.ripple_carry_add c a b
    | `Carry_select -> B.carry_select_add c ~block:3 a b
  in
  B.set_outputs c "sum" sum;
  C.set_output c "carry" carry;
  c

let solve cnf = Berkmin.Solver.solve_cnf cnf

let () =
  let ripple = make_adder `Ripple in
  let carry_select = make_adder `Carry_select in
  Format.printf "ripple:       %a@." C.pp_stats ripple;
  Format.printf "carry-select: %a@." C.pp_stats carry_select;

  (* Equivalence: the miter output can never be 1. *)
  (match solve (M.to_cnf ripple carry_select) with
  | Berkmin.Solver.Unsat -> print_endline "adders proven EQUIVALENT"
  | Berkmin.Solver.Sat _ -> print_endline "BUG: adders differ?!"
  | Berkmin.Solver.Unknown -> print_endline "budget exhausted");

  (* Now break one gate and find the exposing input vector.  We keep
     the Tseitin mapping so the SAT model can be read back as circuit
     inputs. *)
  let buggy = R.inject_fault ripple ~seed:2024 in
  let miter = M.build carry_select buggy in
  let mapping = T.encode miter in
  T.assert_output miter mapping "miter" true;
  (match solve mapping.T.cnf with
  | Berkmin.Solver.Sat model ->
    let inputs = M.interpret_model miter mapping model in
    let bits le = Array.to_list le |> List.map (fun b -> if b then "1" else "0")
                  |> List.rev |> String.concat "" in
    let a = Array.sub inputs 0 width and b = Array.sub inputs width width in
    Printf.printf "design error EXPOSED by a=%s b=%s\n" (bits a) (bits b);
    (* Double-check by simulation. *)
    let good = C.eval_outputs carry_select inputs in
    let bad = C.eval_outputs buggy inputs in
    List.iter
      (fun (name, v) ->
        let w = List.assoc name bad in
        if v <> w then Printf.printf "  output %-7s good=%b buggy=%b\n" name v w)
      good
  | Berkmin.Solver.Unsat ->
    print_endline "fault turned out untestable (masked); try another seed"
  | Berkmin.Solver.Unknown -> print_endline "budget exhausted")
