examples/quickstart.mli:
