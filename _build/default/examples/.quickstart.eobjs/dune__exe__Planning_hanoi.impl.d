examples/planning_hanoi.ml: Array Berkmin Berkmin_gen Berkmin_types Cnf Format List Printf
