examples/pipeline_verify.ml: Array Berkmin Berkmin_circuit Format List Printf Sys
