examples/sudoku.ml: Array Berkmin Berkmin_gen Berkmin_types Format Printf
