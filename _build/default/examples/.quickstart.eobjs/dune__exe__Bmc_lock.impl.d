examples/bmc_lock.ml: Array Berkmin_circuit Format List Printf
