examples/phase_transition.mli:
