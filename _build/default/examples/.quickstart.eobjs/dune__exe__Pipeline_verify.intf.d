examples/pipeline_verify.mli:
