examples/planning_hanoi.mli:
