examples/proof_checking.ml: Berkmin Berkmin_gen Berkmin_proof Berkmin_types Clause Cnf Format Lit Printf String
