examples/sudoku.mli:
