examples/bmc_lock.mli:
