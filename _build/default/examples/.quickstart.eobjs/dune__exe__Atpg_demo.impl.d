examples/atpg_demo.ml: Array Berkmin_circuit Format List Printf String Sys
