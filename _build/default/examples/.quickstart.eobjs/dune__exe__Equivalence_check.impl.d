examples/equivalence_check.ml: Array Berkmin Berkmin_circuit Format List Printf String
