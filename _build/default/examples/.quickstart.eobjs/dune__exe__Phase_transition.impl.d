examples/phase_transition.ml: Berkmin Berkmin_gen List Printf
