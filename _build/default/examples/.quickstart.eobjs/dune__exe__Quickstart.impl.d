examples/quickstart.ml: Array Berkmin Berkmin_dimacs Berkmin_types Cnf Format Lit
