(* Quickstart: build a formula two ways (API and DIMACS), solve it with
   the default BerkMin configuration, and inspect the result.

   Run with: dune exec examples/quickstart.exe *)

open Berkmin_types

let () =
  (* 1. Build a CNF through the API.  Variables are 0-based ints;
     [Lit.pos v] / [Lit.neg_of v] are the two phases of variable v.
     This encodes: (a | b) & (~a | c) & (~b | ~c) & (a | c). *)
  let cnf = Cnf.create () in
  let a = Cnf.fresh_var cnf in
  let b = Cnf.fresh_var cnf in
  let c = Cnf.fresh_var cnf in
  Cnf.add_clause cnf [ Lit.pos a; Lit.pos b ];
  Cnf.add_clause cnf [ Lit.neg_of a; Lit.pos c ];
  Cnf.add_clause cnf [ Lit.neg_of b; Lit.neg_of c ];
  Cnf.add_clause cnf [ Lit.pos a; Lit.pos c ];
  Format.printf "formula: %a@." Cnf.pp_stats cnf;

  (* 2. Solve.  [solve_cnf] is the one-shot wrapper; use
     [Solver.create] + [Solver.solve] to keep the solver around for
     statistics. *)
  let solver = Berkmin.Solver.create cnf in
  (match Berkmin.Solver.solve solver with
  | Berkmin.Solver.Sat model ->
    Format.printf "SATISFIABLE: a=%b b=%b c=%b@." model.(a) model.(b) model.(c);
    assert (Cnf.satisfied_by cnf model)
  | Berkmin.Solver.Unsat -> Format.printf "UNSATISFIABLE@."
  | Berkmin.Solver.Unknown -> Format.printf "budget exhausted@.");
  Format.printf "stats: %a@." Berkmin.Stats.pp_line (Berkmin.Solver.stats solver);

  (* 3. The same via DIMACS text. *)
  let dimacs = "p cnf 3 4\n1 2 0\n-1 3 0\n-2 -3 0\n1 3 0\n" in
  let cnf2 = Berkmin_dimacs.Dimacs.parse_string dimacs in
  (match Berkmin.Solver.solve_cnf cnf2 with
  | Berkmin.Solver.Sat model ->
    Format.printf "DIMACS round-trip: %a"
      (fun fmt () -> Berkmin_dimacs.Dimacs.print_solution fmt (Some model))
      ()
  | Berkmin.Solver.Unsat | Berkmin.Solver.Unknown -> assert false);

  (* 4. Choosing a different strategy: the Chaff-like baseline. *)
  (match Berkmin.Solver.solve_cnf ~config:Berkmin.Config.chaff cnf2 with
  | Berkmin.Solver.Sat _ -> Format.printf "chaff preset agrees: SAT@."
  | Berkmin.Solver.Unsat | Berkmin.Solver.Unknown -> assert false)
