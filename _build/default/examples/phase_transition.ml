(* The random 3-SAT phase transition: sweep the clause/variable ratio
   across the satisfiability threshold (~4.26) and watch the SAT
   probability fall and the search cost peak — the classic hardness
   profile every CDCL paper's random benchmarks sit on.

   Run with: dune exec examples/phase_transition.exe *)

module Solver = Berkmin.Solver

let num_vars = 100
let samples = 20

let () =
  Printf.printf
    "random 3-SAT, %d variables, %d samples per ratio (BerkMin config)\n\n"
    num_vars samples;
  Printf.printf "%8s  %6s  %12s  %12s\n" "ratio" "%SAT" "avg conflicts"
    "max conflicts";
  List.iter
    (fun ratio_x100 ->
      let ratio = float_of_int ratio_x100 /. 100.0 in
      let num_clauses = int_of_float (ratio *. float_of_int num_vars) in
      let sat = ref 0 and total_conf = ref 0 and max_conf = ref 0 in
      for seed = 1 to samples do
        let cnf =
          Berkmin_gen.Random_ksat.generate ~num_vars ~num_clauses ~k:3
            ~seed:(seed + (ratio_x100 * 1000))
        in
        let s = Solver.create cnf in
        (match Solver.solve s with
        | Solver.Sat _ -> incr sat
        | Solver.Unsat -> ()
        | Solver.Unknown -> ());
        let c = (Solver.stats s).Berkmin.Stats.conflicts in
        total_conf := !total_conf + c;
        if c > !max_conf then max_conf := c
      done;
      Printf.printf "%8.2f  %5d%%  %12.0f  %12d\n%!" ratio
        (100 * !sat / samples)
        (float_of_int !total_conf /. float_of_int samples)
        !max_conf)
    [ 300; 350; 380; 400; 410; 420; 426; 430; 440; 450; 480; 520; 600 ];
  print_endline
    "\nThe SAT fraction collapses around ratio 4.26 and the conflict\n\
     counts peak there: the hardest instances live at the threshold."
