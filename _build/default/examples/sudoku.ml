(* Sudoku through the SAT solver: encode the rules, add the clues as
   unit clauses, decode the model into a grid, and show UNSAT detecting
   an unsolvable puzzle — the friendliest demonstration of CNF encoding
   plus solving.

   Run with: dune exec examples/sudoku.exe *)

module P = Berkmin_gen.Puzzles

let clues =
  [
    (0, 0, 5); (0, 1, 3); (0, 4, 7);
    (1, 0, 6); (1, 3, 1); (1, 4, 9); (1, 5, 5);
    (2, 1, 9); (2, 2, 8); (2, 7, 6);
    (3, 0, 8); (3, 4, 6); (3, 8, 3);
    (4, 0, 4); (4, 3, 8); (4, 5, 3); (4, 8, 1);
    (5, 0, 7); (5, 4, 2); (5, 8, 6);
    (6, 1, 6); (6, 6, 2); (6, 7, 8);
    (7, 3, 4); (7, 4, 1); (7, 5, 9); (7, 8, 5);
    (8, 4, 8); (8, 7, 7); (8, 8, 9);
  ]

let print_grid grid =
  Array.iteri
    (fun r row ->
      if r mod 3 = 0 then print_endline "+-------+-------+-------+";
      Array.iteri
        (fun c d ->
          if c mod 3 = 0 then print_string "| ";
          Printf.printf "%d " d)
        row;
      print_endline "|")
    grid;
  print_endline "+-------+-------+-------+"

let () =
  let cnf = P.sudoku ~givens:clues () in
  Format.printf "encoding: %a@." Berkmin_types.Cnf.pp_stats cnf;
  (match Berkmin.Solver.solve_cnf cnf with
  | Berkmin.Solver.Sat m ->
    let grid = P.decode_sudoku m in
    assert (P.valid_sudoku grid);
    print_grid grid
  | Berkmin.Solver.Unsat -> print_endline "puzzle unsolvable"
  | Berkmin.Solver.Unknown -> print_endline "budget exhausted");
  (* An unsolvable variant: force a clash in the top row. *)
  match
    Berkmin.Solver.solve_cnf (P.sudoku ~givens:((0, 8, 5) :: clues) ())
  with
  | Berkmin.Solver.Unsat ->
    print_endline "adding a duplicate 5 to row 0: proven UNSOLVABLE"
  | Berkmin.Solver.Sat _ -> print_endline "unexpected solution?!"
  | Berkmin.Solver.Unknown -> print_endline "budget exhausted"
