(* SAT planning: solve Towers of Hanoi through the CNF encoding (the
   paper's Hanoi class), decode the plan from the model, replay it
   against the rules, and show that one step fewer is UNSAT.

   Run with: dune exec examples/planning_hanoi.exe *)

open Berkmin_types
module Hanoi = Berkmin_gen.Hanoi

let disks = 4

(* Replay a decoded plan on an explicit simulator to prove the model
   is a real plan, not just a satisfying assignment. *)
let replay plan =
  let pegs = [| List.init disks (fun d -> d); []; [] |] in
  let ok = ref true in
  List.iter
    (fun (d, p, q) ->
      (match pegs.(p) with
      | top :: rest when top = d ->
        (match pegs.(q) with
        | smaller :: _ when smaller < d ->
          ok := false (* would cover a smaller disk *)
        | [] | _ :: _ ->
          pegs.(p) <- rest;
          pegs.(q) <- d :: pegs.(q))
      | [] | _ :: _ -> ok := false (* disk not on top of source *)))
    plan;
  !ok && pegs.(0) = [] && pegs.(1) = [] && pegs.(2) = List.init disks (fun d -> d)

let () =
  let horizon = Hanoi.optimal_horizon disks in
  Printf.printf "hanoi with %d disks: optimal plan has %d moves\n" disks horizon;
  let cnf = Hanoi.encode ~disks ~horizon in
  Format.printf "encoding: %a@." Cnf.pp_stats cnf;
  (match Berkmin.Solver.solve_cnf cnf with
  | Berkmin.Solver.Sat model ->
    let plan = Hanoi.decode_plan ~disks ~horizon model in
    Printf.printf "plan found (%d moves):\n" (List.length plan);
    List.iteri
      (fun i (d, p, q) ->
        Printf.printf "  %2d. move disk %d from peg %d to peg %d\n" (i + 1) d p q)
      plan;
    Printf.printf "replay check: %s\n"
      (if replay plan then "plan is legal and reaches the goal" else "PLAN INVALID");
  | Berkmin.Solver.Unsat -> print_endline "BUG: optimal horizon should be SAT"
  | Berkmin.Solver.Unknown -> print_endline "budget exhausted");
  (* One step fewer is impossible. *)
  (match Berkmin.Solver.solve_cnf (Hanoi.encode ~disks ~horizon:(horizon - 1)) with
  | Berkmin.Solver.Unsat ->
    Printf.printf "horizon %d proven UNSAT: the plan above is optimal\n"
      (horizon - 1)
  | Berkmin.Solver.Sat _ -> print_endline "BUG: shorter plan should not exist"
  | Berkmin.Solver.Unknown -> print_endline "budget exhausted")
