(* UNSAT certification: log a DRUP proof while refuting a pigeonhole
   formula, check it with the independent proof checker, and show the
   checker rejecting a corrupted proof.

   Run with: dune exec examples/proof_checking.exe *)

open Berkmin_types
module Drup = Berkmin_proof.Drup

let () =
  let cnf = Berkmin_gen.Pigeonhole.php 7 6 in
  Format.printf "php(7,6): %a@." Cnf.pp_stats cnf;
  let solver = Berkmin.Solver.create cnf in
  let proof = Drup.create () in
  Berkmin.Solver.set_proof_logger solver (Drup.record proof);
  (match Berkmin.Solver.solve solver with
  | Berkmin.Solver.Unsat ->
    Printf.printf "UNSAT after %d conflicts; proof trace has %d events\n"
      (Berkmin.Solver.stats solver).Berkmin.Stats.conflicts
      (Drup.length proof)
  | Berkmin.Solver.Sat _ | Berkmin.Solver.Unknown ->
    failwith "php(7,6) must be UNSAT");

  (* Validate with reverse unit propagation. *)
  (match Drup.check cnf proof with
  | Drup.Valid -> print_endline "checker verdict: VALID"
  | Drup.Invalid { step; reason; _ } ->
    Printf.printf "checker verdict: INVALID at step %d (%s)\n" step reason);

  (* Round-trip through the standard text format. *)
  let text = Drup.to_string proof in
  Printf.printf "serialised proof: %d bytes\n" (String.length text);
  let reparsed = Drup.parse_string text in
  (match Drup.check cnf reparsed with
  | Drup.Valid -> print_endline "round-tripped proof still VALID"
  | Drup.Invalid _ -> print_endline "round-trip broke the proof?!");

  (* Corrupt the proof: claim a clause that does not follow.  The
     checker must reject it. *)
  let corrupted = Drup.create () in
  Drup.record corrupted (Drup.Add (Clause.of_list [ Lit.pos 0 ]));
  Drup.record corrupted (Drup.Add (Clause.of_list []));
  (match Drup.check cnf corrupted with
  | Drup.Valid -> print_endline "BUG: corrupted proof accepted"
  | Drup.Invalid { step; reason; _ } ->
    Printf.printf "corrupted proof correctly rejected at step %d (%s)\n" step
      reason)
