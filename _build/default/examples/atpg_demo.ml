(* SAT-based test-pattern generation — the oldest SAT application in
   EDA and first on the paper's §1 list.  We run full single-stuck-at
   ATPG on a 3-bit ALU slice: for every fault the solver either emits a
   detecting input vector or proves the fault untestable (redundant
   logic), and fault simulation compacts the pattern set.

   Run with: dune exec examples/atpg_demo.exe *)

module C = Berkmin_circuit.Circuit
module B = Berkmin_circuit.Bitvec
module Atpg = Berkmin_circuit.Atpg

let build_alu () =
  let c = C.create () in
  let op = B.inputs c "op" 3 in
  let a = B.inputs c "a" 3 and b = B.inputs c "b" 3 in
  B.set_outputs c "r" (B.alu c ~op_sel:op a b);
  c

let build_redundant () =
  (* A textbook redundancy: o = a & (a | b) — the OR gate's stuck-at-1
     can never be observed. *)
  let c = C.create () in
  let a = C.input c "a" and b = C.input c "b" in
  C.set_output c "o" (C.and_ c a (C.or_ c a b));
  c

let pattern_to_string p =
  String.concat "" (List.map (fun b -> if b then "1" else "0") (Array.to_list p))

let () =
  let alu = build_alu () in
  Format.printf "ALU slice: %a@." C.pp_stats alu;
  let t0 = Sys.time () in
  let report = Atpg.run alu in
  Printf.printf
    "faults: %d total | %d detected | %d untestable | %d undecided (%.2fs)\n"
    report.Atpg.total_faults report.Atpg.detected report.Atpg.untestable
    report.Atpg.undecided (Sys.time () -. t0);
  Printf.printf "coverage of testable faults: %.1f%%\n"
    (100.0 *. Atpg.coverage report);
  Printf.printf "test set after fault simulation: %d patterns for %d faults\n"
    (List.length report.Atpg.patterns)
    report.Atpg.detected;
  List.iteri
    (fun i p -> if i < 5 then Printf.printf "  pattern %d: %s\n" i (pattern_to_string p))
    report.Atpg.patterns;
  if List.length report.Atpg.patterns > 5 then print_endline "  ...";

  (* The redundancy demo. *)
  print_endline "\nredundant circuit o = a & (a | b):";
  let red = build_redundant () in
  let report = Atpg.run red in
  List.iter
    (fun (fault, d) ->
      let where =
        match C.node red fault.Atpg.node with
        | C.Input name -> Printf.sprintf "input %s" name
        | C.Or _ -> "OR gate"
        | C.And _ -> "AND gate"
        | C.Not _ | C.Xor _ | C.Mux _ | C.Const _ -> "gate"
      in
      match d with
      | Atpg.Untestable ->
        Printf.printf "  %s stuck-at-%d: UNTESTABLE (redundant logic)\n" where
          (if fault.Atpg.stuck_at then 1 else 0)
      | Atpg.Detected p ->
        Printf.printf "  %s stuck-at-%d: detected by %s\n" where
          (if fault.Atpg.stuck_at then 1 else 0)
          (pattern_to_string p)
      | Atpg.Undecided -> ())
    report.Atpg.results
