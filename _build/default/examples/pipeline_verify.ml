(* Microprocessor-style verification — the workload behind the paper's
   Sss/Fvp/Vliw classes.  We verify a pipelined datapath's operand
   forwarding network against its sequential specification for EVERY
   3-instruction program (symbolic opcodes and register indices), then
   seed a priority bug into the forwarding logic and decode the failing
   program from the SAT model.

   Run with: dune exec examples/pipeline_verify.exe *)

module C = Berkmin_circuit.Circuit
module P = Berkmin_circuit.Pipeline
module M = Berkmin_circuit.Miter
module T = Berkmin_circuit.Tseitin

let params = { P.stages = 3; num_regs = 4; width = 2 }

let opcode_name = function
  | 0 -> "add"
  | 1 -> "sub"
  | 2 -> "and"
  | 3 -> "or"
  | 4 -> "xor"
  | n -> Printf.sprintf "op%d" n

(* Pull one named input bundle out of a counterexample input vector. *)
let field inputs names prefix width =
  let bits =
    List.filteri
      (fun _ _ -> true)
      (List.mapi (fun i name -> (name, inputs.(i))) names)
  in
  let value = ref 0 in
  for k = 0 to width - 1 do
    match List.assoc_opt (Printf.sprintf "%s.%d" prefix k) bits with
    | Some true -> value := !value lor (1 lsl k)
    | Some false | None -> ()
  done;
  !value

let () =
  let spec = P.specification params in
  let impl = P.implementation params in
  Format.printf "spec: %a@.impl: %a@." C.pp_stats spec C.pp_stats impl;

  (* Prove the forwarding network correct for all programs. *)
  let t0 = Sys.time () in
  (match Berkmin.Solver.solve_cnf (M.to_cnf spec impl) with
  | Berkmin.Solver.Unsat ->
    Printf.printf
      "forwarding network VERIFIED for all %d-instruction programs (%.2fs)\n"
      params.P.stages (Sys.time () -. t0)
  | Berkmin.Solver.Sat _ -> print_endline "BUG in the implementation?!"
  | Berkmin.Solver.Unknown -> print_endline "budget exhausted");

  (* Now the buggy pipeline: oldest-writer-wins forwarding. *)
  let buggy = P.buggy_implementation params in
  let miter = M.build spec buggy in
  let mapping = T.encode miter in
  T.assert_output miter mapping "miter" true;
  match Berkmin.Solver.solve_cnf mapping.T.cnf with
  | Berkmin.Solver.Sat model ->
    let inputs = M.interpret_model miter mapping model in
    let names = C.input_names miter in
    print_endline "hazard bug EXPOSED; failing program:";
    for s = 0 to params.P.stages - 1 do
      let op = field inputs names (Printf.sprintf "op%d" s) 3 in
      let dst = field inputs names (Printf.sprintf "dst%d" s) 2 in
      let src1 = field inputs names (Printf.sprintf "src1_%d" s) 2 in
      let src2 = field inputs names (Printf.sprintf "src2_%d" s) 2 in
      Printf.printf "  I%d: r%d := r%d %s r%d\n" s dst src1 (opcode_name op) src2
    done;
    print_endline "(two writes to one register followed by a read of it:";
    print_endline " newest-wins and oldest-wins forwarding disagree)"
  | Berkmin.Solver.Unsat -> print_endline "bug not exposed?!"
  | Berkmin.Solver.Unknown -> print_endline "budget exhausted"
